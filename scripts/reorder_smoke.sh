#!/usr/bin/env bash
# Flow-director steering & coalescing smoke test, in four checks:
#
#  1. Pathology: a flow-director cell under a fixed hold-off window
#     (timer,usecs=100) must reorder — nonzero out-of-order drops, dup
#     ACKs and flow re-steers in the printed reorder line — while the
#     identical cell under static RSS must not print one at all.
#
#  2. Cure: the same flow-director cell under adaptive coalescing must
#     report no out-of-order drops (the window starts narrow, so the
#     old queue drains before the new one overtakes).
#
#  3. Determinism: the pathology run repeated must print byte-identical
#     output, reordering counters included.
#
#  4. Validation: a malformed -coalesce spec must be rejected with
#     exit code 2 before any simulation runs.
#
# CI runs this; it is also handy locally:
#
#   ./scripts/reorder_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/affinity-sim" ./cmd/affinity-sim

CELL=(-dir rx -cpus 2 -nics 1 -queues 2 -conns 2)

echo "== flow-director + fixed window reorders; static RSS does not =="
"$TMP/affinity-sim" "${CELL[@]}" -policy flowdirector -coalesce timer,usecs=100 > "$TMP/fd.txt"
if ! grep -q "^reorder: " "$TMP/fd.txt"; then
    echo "reorder_smoke: flow-director cell printed no reorder line:" >&2
    cat "$TMP/fd.txt" >&2
    exit 1
fi
if grep -q "^reorder: 0 out-of-order" "$TMP/fd.txt"; then
    echo "reorder_smoke: flow-director cell reported zero out-of-order drops:" >&2
    cat "$TMP/fd.txt" >&2
    exit 1
fi
"$TMP/affinity-sim" "${CELL[@]}" -policy rss -coalesce timer,usecs=100 > "$TMP/rss.txt"
if grep -q "^reorder: " "$TMP/rss.txt"; then
    echo "reorder_smoke: static RSS reordered under the same coalescing:" >&2
    cat "$TMP/rss.txt" >&2
    exit 1
fi

echo "== adaptive coalescing cures the re-steer reordering =="
"$TMP/affinity-sim" "${CELL[@]}" -policy flowdirector -coalesce adaptive > "$TMP/adaptive.txt"
if grep "^reorder: " "$TMP/adaptive.txt" | grep -qv "^reorder: 0 out-of-order"; then
    echo "reorder_smoke: adaptive coalescing still reordered:" >&2
    cat "$TMP/adaptive.txt" >&2
    exit 1
fi

echo "== pathology run deterministic across two runs =="
"$TMP/affinity-sim" "${CELL[@]}" -policy flowdirector -coalesce timer,usecs=100 > "$TMP/fd2.txt"
if ! cmp -s "$TMP/fd.txt" "$TMP/fd2.txt"; then
    echo "reorder_smoke: repeated flow-director cell differs:" >&2
    diff "$TMP/fd.txt" "$TMP/fd2.txt" >&2 || true
    exit 1
fi

echo "== malformed -coalesce spec rejected with exit 2 =="
set +e
"$TMP/affinity-sim" -coalesce "timer,usecs=banana" > "$TMP/bad.txt" 2>&1
rc=$?
set -e
if [ "$rc" -ne 2 ]; then
    echo "reorder_smoke: malformed -coalesce spec exited $rc, want 2:" >&2
    cat "$TMP/bad.txt" >&2
    exit 1
fi

echo "reorder_smoke: OK (flow-director reorders, RSS clean, adaptive cures, deterministic, bad spec rejected)"
