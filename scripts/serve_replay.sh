#!/usr/bin/env bash
# Cold/warm replay check against a live affinity-serve: the same sweep
# requested twice must produce byte-identical NDJSON bodies, with the
# second pass served entirely from the result cache (no new
# simulations). CI runs this; it is also handy locally:
#
#   ./scripts/serve_replay.sh [addr]
set -euo pipefail

ADDR=${1:-127.0.0.1:18080}
TMP=$(mktemp -d)
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/affinity-serve" ./cmd/affinity-serve
"$TMP/affinity-serve" -addr "$ADDR" -cache-dir "$TMP/cache" &
SERVE_PID=$!

for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" = 50 ]; then
        echo "serve_replay: server never became healthy" >&2
        exit 1
    fi
    sleep 0.2
done

SWEEP='{"dir":"tx","sizes":[128,65536],"modes":["none","full"],"warmup_cycles":2000000,"measure_cycles":5000000}'

curl -sf "http://$ADDR/v1/sweep" -d "$SWEEP" > "$TMP/cold.ndjson"
sims_cold=$(curl -sf "http://$ADDR/metrics" | awk '/^affinity_sims_total/ {print $2}')
curl -sf "http://$ADDR/v1/sweep" -d "$SWEEP" > "$TMP/warm.ndjson"
sims_warm=$(curl -sf "http://$ADDR/metrics" | awk '/^affinity_sims_total/ {print $2}')
hits=$(curl -sf "http://$ADDR/metrics" | awk '/^affinity_cache_hits_total/ {print $2}')

if ! cmp -s "$TMP/cold.ndjson" "$TMP/warm.ndjson"; then
    echo "serve_replay: warm response differs from cold response" >&2
    diff "$TMP/cold.ndjson" "$TMP/warm.ndjson" >&2 || true
    exit 1
fi
if [ "$sims_cold" = 0 ]; then
    echo "serve_replay: cold pass ran no simulations?" >&2
    exit 1
fi
if [ "$sims_warm" != "$sims_cold" ]; then
    echo "serve_replay: warm pass simulated ($sims_cold -> $sims_warm) instead of hitting the cache" >&2
    exit 1
fi
if [ "${hits:-0}" = 0 ]; then
    echo "serve_replay: no cache hits recorded on the warm pass" >&2
    exit 1
fi

lines=$(wc -l < "$TMP/cold.ndjson")
echo "serve_replay: OK ($lines cells, $sims_cold simulations cold, $hits cache hits warm, bodies byte-identical)"
