#!/usr/bin/env bash
# Fault-injection smoke test: run one cell of every fault kind through
# the CLI, checking that each run completes, reports degradation where
# the fault implies it, and passes the post-run resource invariants
# (the CLI exits nonzero on a violation). Then assert determinism: the
# same faulted cell twice must print byte-identical output. CI runs
# this; it is also handy locally:
#
#   ./scripts/fault_smoke.sh
set -euo pipefail

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/affinity-sim" ./cmd/affinity-sim

run() { # name spec [extra flags...]
    local name=$1 spec=$2
    shift 2
    if ! "$TMP/affinity-sim" -warmup 2000000 -measure 5000000 "$@" \
        -faults "$spec" > "$TMP/$name.txt" 2>&1; then
        echo "fault_smoke: $name run failed:" >&2
        cat "$TMP/$name.txt" >&2
        exit 1
    fi
    if ! grep -q "invariants: ok" "$TMP/$name.txt"; then
        echo "fault_smoke: $name missing invariant verdict:" >&2
        cat "$TMP/$name.txt" >&2
        exit 1
    fi
}

run loss  "loss,rate=0.01"
run burst "burst,penter=0.002,pexit=0.2,bad=0.9"
# The flap needs a LAN-tuned RTO and a longer window so post-flap
# retransmission (and therefore the recorded recovery) lands inside
# the measured window rather than after it.
run flap  "flap,nic=0,from=4e6,until=8e6" -measure 60000000 -rto-init 20000000 -rto-max 160000000
run delay "delay,nic=0,delay=4e3,jitter=8e3"
run stall "stall,nic=1,from=2e6,until=2.5e6"
run storm "storm,nic=2,cpu=1,period=4e5"

# Loss must actually drop and retransmit.
if ! grep -Eq "faults: [1-9][0-9]* wire drops" "$TMP/loss.txt"; then
    echo "fault_smoke: lossy run reported no wire drops:" >&2
    cat "$TMP/loss.txt" >&2
    exit 1
fi
# A completed flap must record its recovery time.
if ! grep -q "flap recoveries" "$TMP/flap.txt"; then
    echo "fault_smoke: flap run recorded no recovery:" >&2
    cat "$TMP/flap.txt" >&2
    exit 1
fi

# Determinism: the same faulted cell twice is byte-identical.
run burst2 "burst,penter=0.002,pexit=0.2,bad=0.9"
if ! cmp -s "$TMP/burst.txt" "$TMP/burst2.txt"; then
    echo "fault_smoke: repeated faulted run differs:" >&2
    diff "$TMP/burst.txt" "$TMP/burst2.txt" >&2 || true
    exit 1
fi

# An invalid schedule must be rejected before simulating.
if "$TMP/affinity-sim" -faults "loss,rate=2" >/dev/null 2>&1; then
    echo "fault_smoke: invalid schedule (rate=2) was accepted" >&2
    exit 1
fi

echo "fault_smoke: OK (6 fault kinds, invariants clean, repeat run byte-identical)"
