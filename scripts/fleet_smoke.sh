#!/usr/bin/env bash
# Fleet determinism smoke: one affinity-coord sharding over two
# affinity-serve workers must be byte-for-byte indistinguishable from a
# single worker — and from the serial figure generator — while actually
# exercising the fleet machinery (self-registration, load-aware
# sharding, fleet-memo dedup, worker loss). CI runs this; locally:
#
#   ./scripts/fleet_smoke.sh
set -euo pipefail

COORD=127.0.0.1:18070
WORKER_A=127.0.0.1:18071
WORKER_B=127.0.0.1:18072
SOLO=127.0.0.1:18073
TMP=$(mktemp -d)
trap 'kill "$COORD_PID" "$A_PID" "$B_PID" "$SOLO_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/affinity-serve" ./cmd/affinity-serve
go build -o "$TMP/affinity-coord" ./cmd/affinity-coord
go build -o "$TMP/affinity-figures" ./cmd/affinity-figures
go build -o "$TMP/sweepcsv" ./scripts

"$TMP/affinity-coord" -addr "$COORD" -heartbeat 500ms -evict-after 2 -retry-base 100ms &
COORD_PID=$!
# Workers join the fleet themselves: -coord announces and re-announces.
"$TMP/affinity-serve" -addr "$WORKER_A" -coord "http://$COORD" -announce-interval 1s &
A_PID=$!
"$TMP/affinity-serve" -addr "$WORKER_B" -coord "http://$COORD" -announce-interval 1s &
B_PID=$!
# The single-node reference: a plain worker, no fleet.
"$TMP/affinity-serve" -addr "$SOLO" &
SOLO_PID=$!

wait_healthy() { # url predicate-grep
    for i in $(seq 1 100); do
        if curl -sf "$1" 2>/dev/null | grep -q "$2"; then
            return 0
        fi
        sleep 0.2
    done
    echo "fleet_smoke: timed out waiting for $1 to match '$2'" >&2
    exit 1
}
wait_healthy "http://$SOLO/healthz" '"status": "ok"'
wait_healthy "http://$COORD/healthz" '"workers_healthy": 2'
echo "fleet_smoke: coordinator sees both workers"

metric() { # addr name -> value
    curl -sf "http://$1/metrics" | awk -v m="$2" '$1 == m { print $2 }'
}

# --- 1. Fleet merge is byte-identical to a single node -----------------
SWEEP_A='{"dir":"tx","seed":1,"warmup_cycles":2000000,"measure_cycles":5000000}'
curl -sf -X POST "http://$SOLO/v1/sweep" -d "$SWEEP_A" > "$TMP/solo_a.ndjson"
curl -sf -X POST "http://$COORD/v1/sweep" -d "$SWEEP_A" > "$TMP/fleet_a.ndjson"
cmp "$TMP/solo_a.ndjson" "$TMP/fleet_a.ndjson"
LINES=$(wc -l < "$TMP/fleet_a.ndjson")
echo "fleet_smoke: cold fleet sweep ($LINES cells) byte-identical to single node"

# Both workers must actually have taken shards.
for W in "$WORKER_A" "$WORKER_B"; do
    SIMS=$(metric "$W" affinity_sims_total)
    if [ "${SIMS:-0}" -eq 0 ]; then
        echo "fleet_smoke: worker $W simulated nothing; sharding did not spread" >&2
        exit 1
    fi
done

# --- 2. Warm repeat: 100% fleet-memo dedup, zero re-simulations --------
DISPATCHED_COLD=$(metric "$COORD" affinity_coord_cells_dispatched_total)
DEDUPED_COLD=$(metric "$COORD" affinity_coord_cells_deduped_total)
SIMS_COLD=$(( $(metric "$WORKER_A" affinity_sims_total) + $(metric "$WORKER_B" affinity_sims_total) ))
curl -sf -X POST "http://$COORD/v1/sweep" -d "$SWEEP_A" > "$TMP/fleet_a2.ndjson"
cmp "$TMP/fleet_a.ndjson" "$TMP/fleet_a2.ndjson"
DISPATCHED_WARM=$(metric "$COORD" affinity_coord_cells_dispatched_total)
DEDUPED_WARM=$(metric "$COORD" affinity_coord_cells_deduped_total)
SIMS_WARM=$(( $(metric "$WORKER_A" affinity_sims_total) + $(metric "$WORKER_B" affinity_sims_total) ))
if [ "$DISPATCHED_WARM" -ne "$DISPATCHED_COLD" ]; then
    echo "fleet_smoke: warm repeat dispatched $((DISPATCHED_WARM - DISPATCHED_COLD)) cells to workers, want 0" >&2
    exit 1
fi
if [ $((DEDUPED_WARM - DEDUPED_COLD)) -lt "$LINES" ]; then
    echo "fleet_smoke: warm repeat deduped $((DEDUPED_WARM - DEDUPED_COLD)) of $LINES cells" >&2
    exit 1
fi
if [ "$SIMS_WARM" -ne "$SIMS_COLD" ]; then
    echo "fleet_smoke: warm repeat re-simulated $((SIMS_WARM - SIMS_COLD)) cells, want 0" >&2
    exit 1
fi
echo "fleet_smoke: warm repeat 100% deduped ($((DEDUPED_WARM - DEDUPED_COLD)) cells, 0 dispatches, 0 sims)"

# --- 3. Fleet sweep matches the serial figure generator ----------------
# The figures CSV and the sweep NDJSON are two renderings of the same
# deterministic cells; -quick equals the API's "quick":true windows.
curl -sf -X POST "http://$COORD/v1/sweep" -d '{"dir":"tx","quick":true}' \
    | "$TMP/sweepcsv" sweepcsv > "$TMP/fleet_tx.csv"
"$TMP/affinity-figures" -fig 3 -quick -csv -workers 1 > "$TMP/figures.txt"
# Extract the TX block: the first CSV header plus its 28 rows.
awk '/^dir,size,mode/ { if (!seen) { seen=1; print; next } else exit } seen && /^TX,/ { print }' \
    "$TMP/figures.txt" > "$TMP/figures_tx.csv"
cmp "$TMP/figures_tx.csv" "$TMP/fleet_tx.csv"
echo "fleet_smoke: fleet quick sweep byte-identical to affinity-figures serial CSV"

# --- 4. Worker killed mid-sweep: reassigned, merge still identical -----
SWEEP_B='{"dir":"tx","seed":2,"warmup_cycles":10000000,"measure_cycles":30000000}'
curl -sf -X POST "http://$SOLO/v1/sweep" -d "$SWEEP_B" > "$TMP/solo_b.ndjson"
curl -sf -N -X POST "http://$COORD/v1/sweep" -d "$SWEEP_B" > "$TMP/fleet_b.ndjson" &
CURL_PID=$!
sleep 2
kill -9 "$B_PID" 2>/dev/null || true
echo "fleet_smoke: killed worker B mid-sweep (SIGKILL, no drain)"
wait "$CURL_PID"
cmp "$TMP/solo_b.ndjson" "$TMP/fleet_b.ndjson"
wait_healthy "http://$COORD/healthz" '"workers_healthy": 1'
echo "fleet_smoke: mid-sweep worker loss reassigned; merge still byte-identical; corpse evicted"

echo "fleet_smoke: OK"
