#!/usr/bin/env bash
# Benchmark harness: run the scheduler/coroutine/timer microbenchmarks
# across -cpu 1,2,4 plus the end-to-end sweep benches, and serialize the
# results to a machine-readable BENCH_<n>.json (ns/op, allocs/op per
# benchmark) via scripts/bench_compare.go. This file series is the
# repository's recorded performance trajectory; CI regenerates it per PR
# and gates on >20% regression against the committed baseline.
#
#   ./scripts/bench.sh               # writes BENCH_<next>.json in the repo root
#   BENCH_OUT=BENCH_ci.json ./scripts/bench.sh   # explicit output (CI)
#
# Microbenches use -benchtime default; the sweep benches run one
# iteration (-benchtime 1x) because each is a whole simulation sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== microbenchmarks (internal/sim, internal/kern) =="
go test ./internal/sim ./internal/kern \
    -run XXX -bench 'Engine|Coro|Timer|RNG' -benchmem -count 1 -cpu 1,2,4 \
    | tee "$TMP/bench.txt"

echo "== sweep benchmarks (end to end) =="
go test . -run XXX -bench 'BenchmarkSweep' -benchtime 1x -count 1 \
    | tee -a "$TMP/bench.txt"

echo "== open-loop cell (100k-connection churn, run to completion) =="
go test . -run XXX -bench 'BenchmarkOpenLoopCell' -benchtime 1x -count 1 -timeout 30m \
    | tee -a "$TMP/bench.txt"

out="${BENCH_OUT:-}"
if [ -z "$out" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
fi

go run ./scripts parse < "$TMP/bench.txt" > "$out"
echo "wrote $out"
