// Command ttcp-sim mimics the classic ttcp micro-benchmark's interface on
// top of the simulator: one invocation plays both the transmitter(s) and
// the ideal far end, reporting per-connection and aggregate goodput the
// way ttcp prints its summary.
//
// Usage:
//
//	ttcp-sim -t -l 65536            # transmit test, 64 KB writes
//	ttcp-sim -r -l 8192 -conns 4    # receive test, 4 connections
//	ttcp-sim -t -mode full          # pin processes and interrupts
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/affinity"
	"repro/internal/buildinfo"
	"repro/internal/sim"
)

func main() {
	transmit := flag.Bool("t", false, "transmit test (SUT sends)")
	receive := flag.Bool("r", false, "receive test (SUT receives)")
	length := flag.Int("l", 8192, "length of bufs written/read")
	conns := flag.Int("conns", 8, "number of connections (= NICs = processes)")
	modeFlag := flag.String("mode", "none", "affinity mode: none|proc|irq|full")
	seconds := flag.Float64("secs", 0.12, "measured virtual seconds")
	seed := flag.Uint64("seed", 1, "simulation seed")
	latency := flag.Bool("latency", false, "report per-call latency percentiles")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("ttcp-sim")
		return
	}

	dir := affinity.TX
	switch {
	case *transmit && *receive:
		fmt.Fprintln(os.Stderr, "ttcp-sim: -t and -r are mutually exclusive")
		os.Exit(2)
	case *receive:
		dir = affinity.RX
	}

	mode, err := affinity.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttcp-sim:", err)
		os.Exit(2)
	}

	cfg := affinity.DefaultConfig(mode, dir, *length)
	cfg.Seed = *seed
	cfg.NumNICs = *conns
	cfg.MeasureCycles = uint64(*seconds * float64(cfg.CPU.ClockHz))
	cfg.RecordLatency = *latency

	m := affinity.NewMachine(cfg)
	defer m.Shutdown()
	m.Eng.Run(sim.Time(cfg.WarmupCycles))
	r := m.Measure(cfg.MeasureCycles)

	what := "ttcp-t"
	if dir == affinity.RX {
		what = "ttcp-r"
	}
	fmt.Printf("%s: buflen=%d, conns=%d, mode=%s\n", what, *length, *conns, mode)
	for i, p := range m.Procs {
		bytes := p.Sock.AppBytesOut()
		if dir == affinity.RX {
			bytes = p.Sock.AppBytesIn()
		}
		fmt.Printf("  conn %d (nic %d): %d bytes total, %d calls\n",
			i, p.Sock.NIC.ID(), bytes, p.Transactions)
	}
	secs := float64(r.ElapsedCycles) / float64(cfg.CPU.ClockHz)
	fmt.Printf("%s: %d bytes in %.3f real seconds = %.2f Mbit/sec +++\n",
		what, r.Bytes, secs, r.Mbps)
	fmt.Printf("%s: cpu util %s, cost %.2f GHz/Gbps\n", what, fmtUtil(r.Util), r.CostGHzPerGbps)
	if *latency {
		toUs := 1e6 / float64(cfg.CPU.ClockHz)
		for i, p := range m.Procs {
			ls := p.Latency()
			if ls.Count == 0 {
				continue
			}
			fmt.Printf("  conn %d latency (us): min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f (n=%d)\n",
				i, float64(ls.Min)*toUs, float64(ls.Median)*toUs, float64(ls.P90)*toUs,
				float64(ls.P99)*toUs, float64(ls.Max)*toUs, ls.Count)
		}
	}
}

func fmtUtil(us []float64) string {
	s := ""
	for i, u := range us {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%.0f%%", 100*u)
	}
	return s
}
