// Command affinity-figures regenerates every table and figure of the
// paper's evaluation from the simulator.
//
// Usage:
//
//	affinity-figures [flags]
//
//	-fig   3|4|5       regenerate one figure (0 = none)
//	-table 1|2|3|4|5   regenerate one table (0 = none)
//	-all               regenerate everything (default if no selection)
//	-quick             shorter measurement windows (faster, noisier)
//	-csv               also emit CSV for the sweep figures
//	-seed  n           simulation seed
//	-modes a,b,...     modes for the sweep figures (default the paper's four)
//	-workers n         parallel simulation workers (0 = GOMAXPROCS, 1 = serial)
//	-cache             reuse cached results across tables (in-memory)
//	-cache-dir path    persistent result cache (default $AFFINITY_CACHE_DIR)
//	-cache-bytes n     in-memory cache bound (default 256 MiB)
//	-version           print the build version and exit
//
// Independent simulation cells run concurrently across -workers
// goroutines; because every cell is a single-threaded seeded simulation,
// the output is byte-identical to a serial (-workers 1) run. With the
// cache enabled, cells shared between tables (and with previous runs,
// when -cache-dir is set) are simulated once and replayed bit-identically
// thereafter — the rendered output never changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/affinity"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/profiling"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (3, 4 or 5)")
	table := flag.Int("table", 0, "table to regenerate (1-5)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "shorter measurement windows")
	csv := flag.Bool("csv", false, "emit CSV for sweeps")
	seed := flag.Uint64("seed", 1, "simulation seed")
	seeds := flag.Int("seeds", 1, "seeds per cell for the headline summary (mean ± stdev)")
	verify := flag.Bool("verify", false, "score every reproduction claim (executable EXPERIMENTS.md)")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
	modesFlag := flag.String("modes", "", "comma-separated modes for the sweep figures (default the paper's four)")
	useCache := flag.Bool("cache", false, "reuse cached results across tables (in-memory)")
	cacheDir := flag.String("cache-dir", os.Getenv(affinity.CacheDirEnv), "persistent result cache directory (implies -cache)")
	cacheBytes := flag.Int64("cache-bytes", affinity.DefaultCacheBytes, "in-memory cache byte bound (<=0 = unbounded)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("affinity-figures")
		return
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affinity-figures:", err)
		os.Exit(2)
	}
	defer stopProf()

	modes, err := parseModes(*modesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affinity-figures:", err)
		os.Exit(2)
	}

	runner := affinity.NewRunner(*workers)
	if *useCache || *cacheDir != "" {
		affinity.UseCache(runner, affinity.NewCache(*cacheBytes, *cacheDir))
	}

	if *verify {
		cfgFor := func(m affinity.Mode, d affinity.Direction, size int) affinity.Config {
			c := affinity.DefaultConfig(m, d, size)
			c.Seed = *seed
			if *quick {
				c.WarmupCycles = 30_000_000
				c.MeasureCycles = 100_000_000
			}
			return c
		}
		fmt.Print(core.FormatChecks(core.VerifyShapeWith(runner, cfgFor)))
		return
	}
	if *fig == 0 && *table == 0 {
		*all = true
	}
	g := generator{quick: *quick, seed: *seed, csv: *csv, runner: runner, modes: modes}

	if *seeds > 1 {
		g.headline(*seeds)
	}
	if *all || *fig == 3 || *fig == 4 {
		g.sweepFigures(*all || *fig == 3, *all || *fig == 4)
	}
	if *all || *table == 1 {
		g.table1()
	}
	if *all || *table == 2 {
		g.table2()
	}
	if *all || *table == 3 || *table == 5 {
		g.table3and5()
	}
	if *all || *table == 4 {
		g.table4()
	}
	if *all || *fig == 5 {
		g.fig5()
	}
}

type generator struct {
	quick  bool
	seed   uint64
	csv    bool
	runner *affinity.Runner
	modes  []affinity.Mode

	// memoized extreme-point runs shared by tables 1-5 and figure 5
	runs map[string]*affinity.Result
}

// parseModes resolves a comma-separated -modes list; empty selects the
// paper's four modes.
func parseModes(s string) ([]affinity.Mode, error) {
	if strings.TrimSpace(s) == "" {
		return affinity.Modes(), nil
	}
	var modes []affinity.Mode
	for _, name := range strings.Split(s, ",") {
		m, err := affinity.ParseMode(name)
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	return modes, nil
}

// cell identifies one memoized run.
type cell struct {
	mode affinity.Mode
	dir  affinity.Direction
	size int
}

func (g *generator) base(mode affinity.Mode, dir affinity.Direction, size int) affinity.Config {
	cfg := affinity.DefaultConfig(mode, dir, size)
	cfg.Seed = g.seed
	if g.quick {
		cfg.WarmupCycles = 30_000_000
		cfg.MeasureCycles = 100_000_000
	}
	return cfg
}

// ensure runs every not-yet-memoized cell concurrently on the worker
// pool, so each table section's runs overlap instead of executing one
// after another. Memoized results are reused across sections.
func (g *generator) ensure(cells ...cell) {
	if g.runs == nil {
		g.runs = make(map[string]*affinity.Result)
	}
	var missing []cell
	for _, c := range cells {
		if _, ok := g.runs[cellKey(c)]; !ok {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return
	}
	var cfgs []affinity.Config
	for _, c := range missing {
		cfgs = append(cfgs, g.base(c.mode, c.dir, c.size))
	}
	results := g.runner.RunConfigs(cfgs)
	for i, c := range missing {
		g.runs[cellKey(c)] = results[i]
	}
}

func cellKey(c cell) string {
	return fmt.Sprintf("%v-%v-%d", c.mode, c.dir, c.size)
}

func (g *generator) run(mode affinity.Mode, dir affinity.Direction, size int) *affinity.Result {
	g.ensure(cell{mode, dir, size})
	return g.runs[cellKey(cell{mode, dir, size})]
}

// extremeCells lists the no-affinity/full-affinity runs at the §6
// extreme points — the cells tables 1-5 and figure 5 share.
func extremeCells() []cell {
	var cells []cell
	for _, pt := range core.ExtremePoints() {
		for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
			cells = append(cells, cell{mode, pt.Dir, pt.Size})
		}
	}
	return cells
}

// headline prints the four 64 KB mode results aggregated over several
// seeds, quantifying run-to-run variance.
func (g *generator) headline(seeds int) {
	fmt.Printf("=== Headline (TX 64KB) over %d seeds ===\n", seeds)
	for _, mode := range g.modes {
		agg := g.runner.RunSeeds(g.base(mode, affinity.TX, 65536), seeds)
		fmt.Println(agg)
	}
	fmt.Println()
}

func (g *generator) sweepFigures(want3, want4 bool) {
	for _, dir := range []affinity.Direction{affinity.TX, affinity.RX} {
		sw := g.runner.RunSweep(g.base(affinity.ModeNone, dir, 128), dir, affinity.Sizes(), g.modes)
		if want3 {
			fmt.Println("=== Figure 3:", dir, "bandwidth and CPU utilization ===")
			fmt.Print(sw.FormatFig3())
			fmt.Println()
		}
		if want4 {
			fmt.Println("=== Figure 4:", dir, "cost in GHz/Gbps ===")
			fmt.Print(sw.FormatFig4())
			fmt.Println()
		}
		if g.csv {
			fmt.Print(sw.CSV())
			fmt.Println()
		}
	}
}

func (g *generator) table1() {
	g.ensure(extremeCells()...)
	fmt.Println("=== Table 1: baseline characterization (no affinity vs full affinity) ===")
	for _, pt := range core.ExtremePoints() {
		for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
			r := g.run(mode, pt.Dir, pt.Size)
			fmt.Printf("--- %s %dB, %s ---\n", pt.Dir, pt.Size, mode)
			fmt.Print(affinity.BaselineTable(r).Format())
		}
	}
	fmt.Println()
}

func (g *generator) table2() {
	g.ensure(cell{affinity.ModeNone, affinity.TX, 65536}, cell{affinity.ModeFull, affinity.TX, 65536})
	fmt.Println("=== Table 2: spinlock behaviour (Locks bin, TX 64KB) ===")
	for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
		r := g.run(mode, affinity.TX, 65536)
		lb := core.LockStats(r)
		fmt.Printf("%-9s instr=%-9d branches=%-9d mispredicts=%-6d ratio=%.3f%% spin=%d cycles\n",
			mode, lb.Instr, lb.Branches, lb.Mispredicts, 100*lb.MispredictRatio, lb.SpinCycles)
	}
	fmt.Println()
}

func (g *generator) table3and5() {
	g.ensure(extremeCells()...)
	fmt.Println("=== Table 3: relating improvements to events (and Table 5 correlations) ===")
	for _, pt := range core.ExtremePoints() {
		base := g.run(affinity.ModeNone, pt.Dir, pt.Size)
		full := g.run(affinity.ModeFull, pt.Dir, pt.Size)
		fmt.Print(affinity.Compare(base, full).Format())
		fmt.Println()
	}
}

func (g *generator) table4() {
	var cells []cell
	for _, dir := range []affinity.Direction{affinity.TX, affinity.RX} {
		for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
			cells = append(cells, cell{mode, dir, 128})
		}
	}
	g.ensure(cells...)
	fmt.Println("=== Table 4: symbols with highest machine clears (TX/RX 128B) ===")
	for _, dir := range []affinity.Direction{affinity.TX, affinity.RX} {
		for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeFull} {
			r := g.run(mode, dir, 128)
			fmt.Printf("--- %s 128B, %s ---\n", dir, mode)
			fmt.Print(affinity.FormatTopSymbols(affinity.TopClearSymbols(r, 8)))
		}
	}
	fmt.Println()
}

func (g *generator) fig5() {
	g.ensure(extremeCells()...)
	fmt.Println("=== Figure 5: performance impact indicators ===")
	for _, pt := range core.ExtremePoints() {
		base := g.run(affinity.ModeNone, pt.Dir, pt.Size)
		full := g.run(affinity.ModeFull, pt.Dir, pt.Size)
		fmt.Print(core.FormatFig5Pair(base, full))
		fmt.Println()
	}
}
