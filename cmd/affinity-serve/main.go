// Command affinity-serve hosts the simulator as an HTTP service: a thin
// stateless JSON API in front of the content-addressed result cache and
// the parallel experiment runner.
//
// Usage:
//
//	affinity-serve [flags]
//
//	-addr host:port      listen address (default :8080)
//	-workers n           simulation workers per sweep (0 = GOMAXPROCS)
//	-max-inflight n      concurrent simulating requests (0 = 2×workers)
//	-timeout d           per-request timeout (default 5m)
//	-sim-budget d        per-simulation wall-clock budget; the watchdog
//	                     cancels a run that exceeds it and frees the
//	                     slot (0 = none)
//	-max-sim-cycles n    per-simulation simulated-cycle budget (0 = none)
//	-cache-bytes n       in-memory result-cache bound (default 256 MiB)
//	-cache-dir path      on-disk result store (default $AFFINITY_CACHE_DIR)
//	-drain d             shutdown drain budget after SIGINT/SIGTERM (default 30s)
//	-workload spec       default workload for requests that omit one
//	                     (core.ParseWorkload syntax, e.g.
//	                     "openloop,conns=100000"; empty = bulk ttcp)
//	-coalesce spec       default coalescing model for requests that omit
//	                     one (core.ParseCoalesce syntax, e.g.
//	                     "adaptive,min=5,max=250"; empty = legacy throttle)
//	-coord url           affinity-coord base URL to join as a fleet
//	                     worker (empty = standalone)
//	-advertise url       base URL the coordinator should dial back
//	                     (default derives http://127.0.0.1:port from
//	                     -addr)
//	-announce-interval d re-registration cadence (default 30s)
//	-version             print the build version and exit
//
// Endpoints: POST /v1/run, POST /v1/sweep (NDJSON stream), GET
// /v1/verify, GET /healthz, GET /metrics (Prometheus text). See
// internal/serve for request schemas; the README's "Serving the
// simulator" section has a curl walkthrough.
//
// On SIGINT/SIGTERM the listener closes immediately and in-flight
// requests get the drain budget to finish before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cache"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation workers per sweep (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent simulating requests (0 = 2×workers)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request timeout")
	simBudget := flag.Duration("sim-budget", 0, "per-simulation wall-clock budget (0 = none)")
	maxSimCycles := flag.Uint64("max-sim-cycles", 0, "per-simulation simulated-cycle budget (0 = none)")
	cacheBytes := flag.Int64("cache-bytes", cache.DefaultMaxBytes, "in-memory result-cache byte bound (<=0 = unbounded)")
	cacheDir := flag.String("cache-dir", os.Getenv(cache.DirEnv), "on-disk result store directory (empty = memory only)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	workloadFlag := flag.String("workload", "", `default workload spec for requests that omit one ("kind,k=v,..." or @spec.json; empty = bulk ttcp)`)
	coalesceFlag := flag.String("coalesce", "", `default coalescing spec for requests that omit one ("mode,k=v,..." or @config.json; empty = legacy throttle)`)
	coordURL := flag.String("coord", "", "affinity-coord base URL to join as a fleet worker (empty = standalone)")
	advertise := flag.String("advertise", "", "base URL the coordinator should dial back (default derives from -addr)")
	announceEvery := flag.Duration("announce-interval", 30*time.Second, "re-registration cadence when -coord is set")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("affinity-serve")
		return
	}

	if *workloadFlag != "" {
		// Fail fast on a malformed default rather than 400-ing every
		// future request.
		if _, err := core.ParseWorkload(*workloadFlag); err != nil {
			fmt.Fprintln(os.Stderr, "affinity-serve:", err)
			os.Exit(2)
		}
	}
	if *coalesceFlag != "" {
		if _, err := core.ParseCoalesce(*coalesceFlag); err != nil {
			fmt.Fprintln(os.Stderr, "affinity-serve:", err)
			os.Exit(2)
		}
	}

	c := cache.New(*cacheBytes, *cacheDir)
	srv := serve.New(serve.Options{
		Runner:          core.NewRunner(*workers),
		Cache:           c,
		MaxInflight:     *maxInflight,
		Timeout:         *timeout,
		SimBudget:       *simBudget,
		MaxSimCycles:    *maxSimCycles,
		DefaultWorkload: *workloadFlag,
		DefaultCoalesce: *coalesceFlag,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordURL != "" {
		self := *advertise
		if self == "" {
			self = deriveAdvertise(*addr)
		}
		if self == "" {
			fmt.Fprintf(os.Stderr, "affinity-serve: cannot derive -advertise from -addr %q; pass -advertise\n", *addr)
			os.Exit(2)
		}
		go coord.AnnounceLoop(ctx, strings.TrimRight(*coordURL, "/"), coord.RegisterRequest{
			URL:         strings.TrimRight(self, "/"),
			Version:     buildinfo.Version(),
			Concurrency: srv.Limit(),
		}, *announceEvery, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "affinity-serve: "+format+"\n", args...)
		})
	}

	fmt.Fprintf(os.Stderr, "affinity-serve %s listening on %s (workers=%d, cache=%s)\n",
		buildinfo.Version(), *addr, serveWorkers(*workers), cacheLabel(*cacheDir))

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "affinity-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "affinity-serve: draining (up to %s)\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "affinity-serve: drain incomplete:", err)
			os.Exit(1)
		}
	}
	st := c.Stats()
	fmt.Fprintf(os.Stderr, "affinity-serve: done (sims=%d, hits=%d, coalesced=%d, disk hits=%d, hit ratio %.2f)\n",
		st.Sims, st.Hits, st.Coalesced, st.DiskHits, st.HitRatio())
}

func serveWorkers(n int) int {
	if n <= 0 {
		return core.DefaultWorkers()
	}
	return n
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory"
	}
	return "memory+" + dir
}

// deriveAdvertise guesses the loopback base URL for a listen address
// like ":8080" or "0.0.0.0:8080" — right for single-host fleets, which
// is what the smoke tests and local walkthroughs run. Cross-host
// deployments pass -advertise explicitly.
func deriveAdvertise(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil || port == "" {
		return ""
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
