// Command affinity-sim runs one configuration of the paper's experiment
// and prints the measured result, optionally with the profiling tables.
//
// Usage:
//
//	affinity-sim [flags]
//
//	-mode   none|proc|irq|full|partition   affinity mode (default none)
//	-dir    tx|rx                transfer direction (default tx)
//	-size   bytes                ttcp transaction size (default 65536)
//	-cpus   n                    processors (default 2, the paper's SUT)
//	-nics   n                    NICs/connections (default 8; no static cap)
//	-queues n                    receive (RSS) queues per NIC (default 1)
//	-conns  n                    connections/processes (0 = one per NIC)
//	-policy name                 placement policy override
//	                             (none|process|irq|full|partition|rotate|rss|
//	                             flowdirector). flowdirector stripes flows
//	                             like rss but re-programs a flow's queue to
//	                             follow its process across migrations,
//	                             which can reorder in-flight frames.
//	-coalesce spec               receive-interrupt coalescing model: a mode
//	                             (legacy|timer|frames|adaptive) followed by
//	                             comma-separated key=value pairs, e.g.
//	                             "timer,usecs=100" or
//	                             "adaptive,min=5,max=250,frames=8", or
//	                             @config.json. Empty keeps the legacy
//	                             fixed inter-IRQ throttle.
//	-seed   n                    simulation seed (default 1)
//	-warmup cycles               warmup window (default 60e6)
//	-measure cycles              measured window (default 240e6)
//	-seeds   n                   run n consecutive seeds, print mean ± stdev
//	-workers n                   parallel workers for -seeds (0 = GOMAXPROCS, 1 = serial)
//	-plan                        print the computed placement plan and exit
//	-table1                      print the Table 1 bin characterization
//	-fig5                        print the Figure 5 impact indicators
//	-table4                      print the Table 4 per-CPU clear symbols
//	-trace file.json             record a timeline and write Chrome
//	                             trace-event JSON (open in Perfetto or
//	                             chrome://tracing)
//	-trace-text file.txt         record a timeline and write a plain-text
//	                             dump
//	-timeseries file.csv         sample gauges (util, runqueue, Mbps, IRQ
//	                             rate) over the measured window into a CSV
//	-gauge-cycles n              gauge sampling period (default 2e6 = 1 ms)
//	-faults spec                 deterministic fault schedule: semicolon-
//	                             separated events, each a kind
//	                             (loss|burst|flap|delay|stall|storm)
//	                             followed by comma-separated key=value
//	                             pairs, e.g.
//	                             "flap,nic=0,from=1e9,until=1.5e9;loss,rate=0.01",
//	                             or @file.json for a JSON schedule. The
//	                             run reports degradation metrics, checks
//	                             the post-run resource invariants, and
//	                             exits nonzero on a violation.
//	-rto-init cycles             initial TCP retransmission timeout
//	                             (0 = the 200 ms default; LAN-tune, e.g.
//	                             20000000, so post-fault recovery lands
//	                             inside short measured windows)
//	-rto-max cycles              retransmission backoff cap (0 = default)
//	-workload spec               workload selection: a kind
//	                             (bulk|rpc|openloop) followed by
//	                             comma-separated key=value pairs, e.g.
//	                             "openloop,conns=100000,arrival=pareto",
//	                             or @spec.json. Empty runs the paper's
//	                             bulk ttcp workload. The rpc and openloop
//	                             workloads report request-latency
//	                             quantiles; openloop runs the
//	                             connection-churn cell to completion
//	                             (warmup/measure are ignored) and reports
//	                             churn accounting.
//
// The machine shape flags compose with any mode or policy: e.g.
// "-cpus 4 -mode full" is the §5 4P scaling point, and
// "-cpus 2 -nics 2 -queues 4 -policy rss" is the §8 receive-side-scaling
// future work. The default shape is the paper's 2P × 8NIC machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/affinity"
	"repro/internal/buildinfo"
	"repro/internal/profiling"
)

func main() {
	modeFlag := flag.String("mode", "none", "affinity mode: none|proc|irq|full|partition")
	dirFlag := flag.String("dir", "tx", "direction: tx|rx")
	size := flag.Int("size", 65536, "transaction size in bytes")
	cpus := flag.Int("cpus", 2, "number of processors")
	nics := flag.Int("nics", 8, "number of NICs (one connection and process each)")
	queues := flag.Int("queues", 1, "receive (RSS) queues per NIC")
	conns := flag.Int("conns", 0, "connections/processes (0 = one per NIC)")
	policyFlag := flag.String("policy", "", "placement policy override: none|process|irq|full|partition|rotate|rss|flowdirector")
	coalesceFlag := flag.String("coalesce", "", `receive-interrupt coalescing: "mode,k=v,..." (modes legacy|timer|frames|adaptive, e.g. "timer,usecs=100") or @config.json; empty = the legacy fixed throttle`)
	planOnly := flag.Bool("plan", false, "print the computed placement plan and exit")
	seed := flag.Uint64("seed", 1, "simulation seed")
	warmup := flag.Uint64("warmup", 60_000_000, "warmup cycles")
	measure := flag.Uint64("measure", 240_000_000, "measured cycles")
	seeds := flag.Int("seeds", 1, "run n consecutive seeds and print the aggregate")
	workers := flag.Int("workers", 0, "parallel workers for -seeds (0 = GOMAXPROCS, 1 = serial)")
	table1 := flag.Bool("table1", false, "print Table 1 bin characterization")
	fig5 := flag.Bool("fig5", false, "print Figure 5 impact indicators")
	table4 := flag.Bool("table4", false, "print Table 4 per-CPU machine-clear symbols")
	jsonOut := flag.Bool("json", false, "print the result as JSON instead of text")
	perCPU := flag.Bool("percpu", false, "print per-CPU Table 1 characterizations")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	traceText := flag.String("trace-text", "", "write a plain-text timeline dump to this file")
	timeseries := flag.String("timeseries", "", "write a gauge time-series CSV to this file")
	gaugeCycles := flag.Uint64("gauge-cycles", 2_000_000, "gauge sampling period in cycles (with -timeseries)")
	faultsFlag := flag.String("faults", "", `fault schedule: "kind,k=v,...;..." (kinds loss|burst|flap|delay|stall|storm) or @schedule.json`)
	workloadFlag := flag.String("workload", "", `workload spec: "kind,k=v,..." (kinds bulk|rpc|openloop, e.g. "openloop,conns=100000,arrival=pareto") or @spec.json; empty = the paper's bulk ttcp workload`)
	rtoInit := flag.Uint64("rto-init", 0, "initial TCP retransmission timeout in cycles (0 = 200 ms default; LAN-tune for short fault runs)")
	rtoMax := flag.Uint64("rto-max", 0, "retransmission backoff cap in cycles (0 = default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("affinity-sim")
		return
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affinity-sim:", err)
		os.Exit(2)
	}
	defer stopProf()

	mode, err := affinity.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affinity-sim:", err)
		os.Exit(2)
	}
	dir, err := affinity.ParseDirection(*dirFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affinity-sim:", err)
		os.Exit(2)
	}
	if *size <= 0 {
		fmt.Fprintln(os.Stderr, "affinity-sim: size must be positive")
		os.Exit(2)
	}

	cfg := affinity.DefaultConfig(mode, dir, *size)
	cfg.Seed = *seed
	cfg.WarmupCycles = *warmup
	cfg.MeasureCycles = *measure
	if *rtoInit != 0 {
		cfg.TCP.RTOInitCycles = *rtoInit
	}
	if *rtoMax != 0 {
		cfg.TCP.RTOMaxCycles = *rtoMax
	}
	if *cpus != 2 || *nics != 8 || *queues != 1 || *conns != 0 {
		t := affinity.Uniform(*cpus, *nics, *queues)
		t.Conns = *conns
		cfg.Topology = &t
	}
	if *policyFlag != "" {
		pol, err := affinity.ParsePolicy(*policyFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "affinity-sim:", err)
			os.Exit(2)
		}
		cfg.Policy = pol
	}
	plan, err := affinity.PlanFor(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affinity-sim: impossible shape:", err)
		os.Exit(2)
	}
	if *faultsFlag != "" {
		sched, err := affinity.ParseFaults(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "affinity-sim:", err)
			os.Exit(2)
		}
		t := cfg.Topo()
		if err := sched.Validate(len(t.NICs), t.NumCPUs, cfg.WarmupCycles+cfg.MeasureCycles); err != nil {
			fmt.Fprintln(os.Stderr, "affinity-sim:", err)
			os.Exit(2)
		}
		if !sched.Empty() {
			cfg.Faults = sched
		}
	}
	if *workloadFlag != "" {
		spec, err := affinity.ParseWorkload(*workloadFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "affinity-sim:", err)
			os.Exit(2)
		}
		cfg.Workload = spec
	}
	if *coalesceFlag != "" {
		co, err := affinity.ParseCoalesce(*coalesceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "affinity-sim:", err)
			os.Exit(2)
		}
		cfg.Coalesce = co
	}
	if *planOnly {
		fmt.Println(plan)
		for n := range plan.QueueVectors {
			for q, vec := range plan.QueueVectors[n] {
				fmt.Printf("  nic%d q%d vec %#x mask %#x\n", n, q, int(vec), plan.IRQMasks[n][q])
			}
		}
		for i := range plan.ProcMasks {
			fmt.Printf("  conn%d -> nic%d queue %d, proc mask %#x start cpu%d\n",
				i, plan.NICOf(i), plan.FlowQueues[i], plan.ProcMasks[i], plan.StartCPUs[i])
		}
		return
	}

	if *traceOut != "" || *traceText != "" {
		cfg.Trace = &affinity.TraceConfig{}
	}
	if *timeseries != "" {
		cfg.GaugeCycles = *gaugeCycles
	}

	if *seeds > 1 {
		// Aggregate mode: fan the seeds across the worker pool and print
		// the mean ± stdev summary; the per-run tables don't apply.
		agg := affinity.NewRunner(*workers).RunSeeds(cfg, *seeds)
		fmt.Println(agg)
		return
	}

	r := affinity.Run(cfg)
	writeTrace := func(path string, write func(w *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "affinity-sim:", err)
			os.Exit(1)
		}
		if err := write(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "affinity-sim:", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		writeTrace(*traceOut, func(f *os.File) error {
			return affinity.WriteChromeTrace(f, r.Trace, cfg.CPU.ClockHz)
		})
	}
	if *traceText != "" {
		writeTrace(*traceText, func(f *os.File) error {
			return affinity.WriteTextTrace(f, r.Trace, cfg.CPU.ClockHz)
		})
	}
	if *timeseries != "" {
		writeTrace(*timeseries, func(f *os.File) error {
			return r.Series.WriteCSV(f)
		})
	}
	if *jsonOut {
		js, err := r.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(js)
	} else {
		fmt.Println(r)
		if r.Requests > 0 {
			clk := float64(cfg.CPU.ClockHz)
			us := func(cyc uint64) float64 { return float64(cyc) / clk * 1e6 }
			fmt.Printf("latency: %d requests, p50=%.1fµs p99=%.1fµs p999=%.1fµs\n",
				r.Requests, us(r.LatencyP50Cycles), us(r.LatencyP99Cycles), us(r.LatencyP999Cycles))
		}
		if r.ConnsGenerated > 0 {
			fmt.Printf("churn: %d generated, %d completed, %d abandoned, %d SYN drops\n",
				r.ConnsGenerated, r.Transactions, r.ConnsAbandoned, r.SynDrops)
		}
		if r.OutOfOrder > 0 || r.FlowResteers > 0 {
			fmt.Printf("reorder: %d out-of-order drops, %d dup ACKs, %d fast retransmits, %d flow re-steers\n",
				r.OutOfOrder, r.DupAcks, r.FastRetransmits, r.FlowResteers)
		}
		if !cfg.Faults.Empty() {
			fmt.Printf("faults: %d wire drops, %d retransmits, goodput ratio %.4f",
				r.WireDrops, r.Retransmits, r.GoodputRatio)
			if n := len(r.FlapRecoveryCycles); n > 0 {
				fmt.Printf(", %d flap recoveries", n)
			}
			if r.InvariantViolation != "" {
				fmt.Printf("\ninvariants: VIOLATED — %s\n", r.InvariantViolation)
			} else {
				fmt.Println("\ninvariants: ok (buffers conserved, timers disarmed, sequences agree)")
			}
		}
	}
	if r.InvariantViolation != "" {
		fmt.Fprintln(os.Stderr, "affinity-sim: invariant violation:", r.InvariantViolation)
		os.Exit(1)
	}

	if *table1 {
		fmt.Println()
		fmt.Print(affinity.BaselineTable(r).Format())
	}
	if *fig5 {
		fmt.Println()
		for _, s := range affinity.Indicators(r) {
			fmt.Printf("%-14s %12d %7.1f%%\n", s.Event, s.Count, 100*s.Share)
		}
	}
	if *table4 {
		fmt.Println()
		fmt.Print(affinity.FormatTopSymbols(affinity.TopClearSymbols(r, 10)))
	}
	if *perCPU {
		for cpu, tab := range affinity.PerCPUBinTables(r) {
			fmt.Printf("\n--- CPU %d ---\n", cpu)
			fmt.Print(tab.Format())
		}
	}
}
