// Command affinity-coord fronts a fleet of affinity-serve workers: it
// accepts the same sweep requests as one worker, shards the expanded
// cells across the fleet weighted by each worker's capacity, and merges
// the results into a byte-identical NDJSON stream.
//
// Usage:
//
//	affinity-coord [flags]
//
//	-addr host:port      listen address (default :8070)
//	-worker url          seed worker base URL (repeatable; workers can
//	                     also join at runtime via POST /v1/register)
//	-heartbeat d         worker ping interval (default 2s)
//	-evict-after n       consecutive missed heartbeats before eviction
//	                     (default 3)
//	-cell-timeout d      one dispatch attempt's budget (default 5m)
//	-retries n           re-dispatches per failed cell (default 4)
//	-retry-base d        first retry backoff (default 250ms)
//	-retry-cap d         backoff ceiling (default 5s)
//	-hedge-after d       straggler hedge delay; <0 disables (default 30s)
//	-memo-entries n      fleet result-memo entry bound (default 65536)
//	-journal-dir path    durable cell journal; a restarted coordinator
//	                     replays it and re-dispatches only missing cells
//	-journal-sync d      journal group-commit fsync interval (default 100ms)
//	-breaker-threshold n consecutive dispatch failures that open a
//	                     worker's circuit breaker; <0 disables (default 5)
//	-breaker-cooloff d   open-breaker cooloff before a half-open probe
//	                     (default 10s)
//	-drain d             shutdown drain budget (default 30s)
//	-version             print the build version and exit
//
// Endpoints: POST /v1/run, POST /v1/sweep (NDJSON stream), POST
// /v1/register, GET /healthz (per-worker status table + fleet
// aggregates), GET /metrics. The README's "Running a fleet" section has
// a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/coord"
)

// urlList collects a repeatable -worker flag.
type urlList []string

func (l *urlList) String() string { return fmt.Sprint([]string(*l)) }
func (l *urlList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var workers urlList
	addr := flag.String("addr", ":8070", "listen address")
	flag.Var(&workers, "worker", "seed worker base URL (repeatable)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "worker ping interval")
	evictAfter := flag.Int("evict-after", 3, "consecutive missed heartbeats before eviction")
	cellTimeout := flag.Duration("cell-timeout", 5*time.Minute, "one dispatch attempt's budget")
	retries := flag.Int("retries", 4, "re-dispatches per failed cell (<0 disables)")
	retryBase := flag.Duration("retry-base", 250*time.Millisecond, "first retry backoff")
	retryCap := flag.Duration("retry-cap", 5*time.Second, "retry backoff ceiling")
	hedgeAfter := flag.Duration("hedge-after", 30*time.Second, "straggler hedge delay (<0 disables)")
	memoEntries := flag.Int("memo-entries", 65536, "fleet result-memo entry bound (<0 disables)")
	journalDir := flag.String("journal-dir", "", "durable cell journal directory (empty disables)")
	journalSync := flag.Duration("journal-sync", 100*time.Millisecond, "journal group-commit fsync interval")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive dispatch failures that open a worker's breaker (<0 disables)")
	breakerCooloff := flag.Duration("breaker-cooloff", 10*time.Second, "open-breaker cooloff before a half-open probe")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("affinity-coord")
		return
	}

	c, err := coord.New(coord.Options{
		Workers:          workers,
		Heartbeat:        *heartbeat,
		EvictAfter:       *evictAfter,
		CellTimeout:      *cellTimeout,
		Retries:          *retries,
		RetryBase:        *retryBase,
		RetryCap:         *retryCap,
		HedgeAfter:       *hedgeAfter,
		MemoEntries:      *memoEntries,
		JournalDir:       *journalDir,
		JournalSync:      *journalSync,
		BreakerThreshold: *breakerThreshold,
		BreakerCooloff:   *breakerCooloff,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "affinity-coord:", err)
		os.Exit(1)
	}
	defer c.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: c}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "affinity-coord %s listening on %s (%d seed workers)\n",
		buildinfo.Version(), *addr, len(workers))

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "affinity-coord:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "affinity-coord: draining (up to %s)\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			// The drain budget is spent; cut the remaining streams so the
			// journal checkpoint below still runs before exit.
			fmt.Fprintln(os.Stderr, "affinity-coord: drain incomplete:", err)
			httpSrv.Close()
		}
		// Stop background loops and compact the journal: every cell that
		// completed before the signal survives the restart.
		if err := c.Shutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "affinity-coord: journal checkpoint:", err)
			os.Exit(1)
		}
	}
}
