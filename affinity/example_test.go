package affinity_test

import (
	"fmt"

	"repro/affinity"
)

// Reproduce the headline comparison: the paper's four affinity modes at
// the 64 KB bulk-transmit operating point.
func Example_headline() {
	for _, mode := range affinity.Modes() {
		r := affinity.Run(affinity.DefaultConfig(mode, affinity.TX, 65536))
		fmt.Println(r)
	}
}

// Drive the paper's §6.3 comparative analysis between two modes.
func Example_compare() {
	base := affinity.Run(affinity.DefaultConfig(affinity.ModeNone, affinity.TX, 65536))
	full := affinity.Run(affinity.DefaultConfig(affinity.ModeFull, affinity.TX, 65536))
	cmp := affinity.Compare(base, full)
	fmt.Print(cmp.Format()) // Table 3 + Table 5 correlations
}

// Attach an Oprofile-style sampler and take several measurement windows
// from one machine.
func Example_machine() {
	cfg := affinity.DefaultConfig(affinity.ModeIRQ, affinity.RX, 8192)
	m := affinity.NewMachine(cfg)
	defer m.Shutdown()

	m.Eng.Run(60_000_000) // warm up
	s := m.NewSampler(20_000)
	r := m.Measure(120_000_000)
	s.Stop()

	fmt.Println(r)
	fmt.Print(s.Format()) // sampled bin distribution, Oprofile-style
}

// Score every reproduction claim — the executable EXPERIMENTS.md.
func ExampleVerifyShape() {
	checks := affinity.VerifyShape(nil)
	fmt.Print(affinity.FormatChecks(checks))
}
