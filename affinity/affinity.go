// Package affinity is the public interface to the processor-affinity
// characterization study: a full-system simulation of a two-processor
// Pentium 4 Xeon server with eight gigabit NICs running a Linux-2.4-class
// TCP/IP stack, reproducing Foong et al., "Architectural Characterization
// of Processor Affinity in Network Processing" (ISPASS 2005).
//
// The package lets you run the paper's experiment — a ttcp bulk-transfer
// workload under one of four affinity modes — and obtain the paper's
// measurement artifacts:
//
//   - throughput, CPU utilization and GHz/Gbps cost (Figures 3-4),
//   - the functional-bin characterization (Table 1),
//   - first-order performance-impact indicators (Figure 5),
//   - Amdahl-decomposed per-bin improvement analysis (Table 3),
//   - per-CPU machine-clear symbol profiles (Table 4),
//   - Spearman rank correlations (Table 5).
//
// Quick start:
//
//	base := affinity.Run(affinity.DefaultConfig(affinity.ModeNone, affinity.TX, 65536))
//	full := affinity.Run(affinity.DefaultConfig(affinity.ModeFull, affinity.TX, 65536))
//	fmt.Println(base, full)
//	fmt.Print(affinity.Compare(base, full).Format())
//
// Everything is deterministic: identical Config (including Seed) yields
// identical results.
package affinity

import (
	"io"

	"repro/internal/cache"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netdev"
	"repro/internal/perf"
	"repro/internal/prof"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/ttcp"
	"repro/internal/workload"
)

// Mode is one of the paper's four affinity modes.
type Mode = core.Mode

// The four affinity modes of §4.
const (
	// ModeNone leaves interrupts on CPU0 and processes to the scheduler.
	ModeNone = core.ModeNone
	// ModeProc pins the eight ttcp processes 4/4 across the CPUs.
	ModeProc = core.ModeProc
	// ModeIRQ pins the eight NIC interrupt lines 4/4 across the CPUs.
	ModeIRQ = core.ModeIRQ
	// ModeFull pins each process to the CPU serving its NIC's interrupts.
	ModeFull = core.ModeFull
	// ModePartition is the AsyMOS/ETA-style hard partition (§7 related
	// work): interrupts on CPU0, applications elsewhere. An extension
	// beyond the paper's four measured modes.
	ModePartition = core.ModePartition
)

// Direction selects the bulk-transfer direction.
type Direction = ttcp.Direction

// Transfer directions.
const (
	// TX: the system under test transmits.
	TX = ttcp.TX
	// RX: the system under test receives.
	RX = ttcp.RX
)

// Config describes one experiment run; see core.Config for every knob.
type Config = core.Config

// Result is one measured steady-state window.
type Result = core.Result

// Machine is a fully assembled simulated SUT, for callers that want to
// drive warmup and multiple measurement windows themselves.
type Machine = core.Machine

// Comparison is the paper's §6.3 comparative characterization.
type Comparison = core.Comparison

// Sweep is a modes × sizes measurement grid (Figures 3-4).
type Sweep = core.Sweep

// BinTable is the paper's Table 1 characterization.
type BinTable = prof.BinTable

// EventShare is one Figure 5 row.
type EventShare = prof.EventShare

// Modes lists the four affinity modes in the paper's order.
func Modes() []Mode { return core.Modes() }

// AllModes additionally includes the ModePartition extension.
func AllModes() []Mode { return core.AllModes() }

// Sizes is the paper's transaction-size sweep.
func Sizes() []int { return append([]int(nil), core.Sizes...) }

// DefaultConfig returns the paper's machine at one operating point: two
// 2 GHz processors, eight NICs/connections/processes, calibrated model
// parameters, and a steady-state measurement window.
func DefaultConfig(mode Mode, dir Direction, size int) Config {
	return core.DefaultConfig(mode, dir, size)
}

// Topology describes an arbitrary machine shape: processors, optional
// NUMA-ish domains, NICs with one or more receive queues, and the
// connection population. Set Config.Topology to run the experiment on a
// shape other than the paper's 2P × 8NIC box.
type Topology = topo.Topology

// NICShape describes one adapter of a Topology.
type NICShape = topo.NICShape

// Plan is an explicit placement of work onto a Topology: irq→CPU masks,
// queue→vector assignment, process→CPU masks and flow→queue steering.
type Plan = topo.Plan

// PlacementPolicy turns a Topology into a Plan. Built-ins cover the
// paper's modes plus partition, rotate and RSS; custom implementations
// can place work any other way. Set Config.Policy to override the policy
// implied by Config.Mode.
type PlacementPolicy = topo.PlacementPolicy

// Uniform builds a Topology of identical NICs: cpus processors and nics
// adapters with queues receive queues each. Uniform(2, 8, 1) is the
// paper's machine.
func Uniform(cpus, nics, queues int) Topology { return topo.Uniform(cpus, nics, queues) }

// PaperTopology returns the paper's SUT shape: 2 CPUs × 8 single-queue
// NICs, one connection and one process per NIC.
func PaperTopology() Topology { return topo.Paper() }

// PolicyForMode maps an affinity mode to its placement policy.
func PolicyForMode(m Mode) PlacementPolicy { return core.PolicyForMode(m) }

// ParseMode resolves an affinity mode from its common spellings (none,
// proc, irq, full, partition and aliases), case-insensitively.
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// ParseDirection resolves a transfer direction from its common spellings
// (tx/send/transmit, rx/recv/receive), case-insensitively.
func ParseDirection(s string) (Direction, error) { return core.ParseDirection(s) }

// ParsePolicy resolves a built-in placement policy from its name or a
// common alias (proc, int, part, ...), case-insensitively.
func ParsePolicy(s string) (PlacementPolicy, error) { return core.ParsePolicy(s) }

// PolicyByName resolves a built-in placement policy from its name:
// none, process, irq, full, partition, rotate or rss.
func PolicyByName(name string) (PlacementPolicy, error) { return topo.PolicyByName(name) }

// Policies lists every built-in placement policy.
func Policies() []PlacementPolicy { return topo.Policies() }

// PlanFor computes the placement plan a config implies without building
// the machine — validate or inspect a shape before paying for a run.
func PlanFor(cfg Config) (*Plan, error) { return core.PlanFor(cfg) }

// Run builds the machine, warms it up, measures one window and returns
// the result.
func Run(cfg Config) *Result { return core.Run(cfg) }

// NewMachine assembles a machine without running it; use Machine.Measure
// for custom windows and Machine.Shutdown when done.
func NewMachine(cfg Config) *Machine { return core.NewMachine(cfg) }

// Sampler is the Oprofile-style statistical profiler; attach one with
// Machine.NewSampler to sample where the processors spend their time.
type Sampler = core.Sampler

// Runner fans independent runs out across a bounded worker pool and
// reassembles results in deterministic input order. Every simulation is
// single-threaded and seeded, so parallel results are bit-identical to
// sequential ones; parallelism changes wall-clock time only.
type Runner = core.Runner

// WorkersEnv is the environment variable that overrides the default
// worker count (a positive integer).
const WorkersEnv = core.WorkersEnv

// NewRunner returns a runner bounded to the given number of workers:
// 0 selects GOMAXPROCS (overridable via WorkersEnv), 1 forces serial
// execution — the opt-out for callers that need sequential runs.
func NewRunner(workers int) *Runner { return core.NewRunner(workers) }

// RunAll runs every configuration concurrently on the default worker
// pool and returns the results in input order, bit-identical to calling
// Run on each configuration sequentially.
func RunAll(cfgs []Config) []*Result { return core.RunAll(cfgs) }

// RunSweep measures every (mode, size) cell for one direction. Cells run
// concurrently on the default worker pool; use NewRunner(1).RunSweep for
// serial execution. Results are bit-identical either way.
func RunSweep(base Config, dir Direction, sizes []int, modes []Mode) Sweep {
	return core.RunSweep(base, dir, sizes, modes)
}

// Aggregate summarizes one configuration across several seeds.
type Aggregate = core.Aggregate

// RunSeeds measures cfg under n consecutive seeds and aggregates the
// headline metrics (mean ± stdev), playing the role of run-to-run
// variance in a deterministic simulator. Seeds run concurrently on the
// default worker pool; use NewRunner(1).RunSeeds for serial execution.
func RunSeeds(cfg Config, n int) Aggregate { return core.RunSeeds(cfg, n) }

// Compare performs the paper's §6.3 analysis between a baseline run and
// an improved run of the same workload.
func Compare(base, improved *Result) *Comparison { return core.Compare(base, improved) }

// CSVHeader is the column list for Result.CSVRow exports.
func CSVHeader() string { return core.CSVHeader() }

// Check is one scored reproduction claim.
type Check = core.Check

// VerifyShape runs the experiment suite and scores every reproduction
// claim from EXPERIMENTS.md — the executable form of that document. Pass
// nil to use the paper's default operating points. The underlying runs
// execute concurrently on the default worker pool; see VerifyShapeWith.
func VerifyShape(cfgFor func(Mode, Direction, int) Config) []Check {
	return core.VerifyShape(cfgFor)
}

// VerifyShapeWith is VerifyShape on an explicit runner (nil = default;
// NewRunner(1) scores from strictly sequential runs).
func VerifyShapeWith(r *Runner, cfgFor func(Mode, Direction, int) Config) []Check {
	return core.VerifyShapeWith(r, cfgFor)
}

// FormatChecks renders a verification scorecard.
func FormatChecks(checks []Check) string { return core.FormatChecks(checks) }

// BaselineTable builds the Table 1 functional-bin characterization.
func BaselineTable(r *Result) BinTable { return core.BaselineTable(r) }

// Indicators builds the Figure 5 performance-impact indicator column.
func Indicators(r *Result) []EventShare { return core.Indicators(r) }

// TopClearSymbols builds the Table 4 per-CPU machine-clear profile.
func TopClearSymbols(r *Result, n int) [][]prof.SymbolCount {
	return core.TopClearSymbols(r, n)
}

// PerCPUBinTables builds one Table-1 characterization per processor —
// the per-CPU view the paper uses in §6.3.
func PerCPUBinTables(r *Result) []BinTable {
	return prof.PerCPUBinTables(r.Ctr)
}

// FormatTopSymbols renders a Table 4 style listing.
func FormatTopSymbols(rows [][]prof.SymbolCount) string {
	return prof.FormatTopSymbols(rows, perf.MachineClears)
}

// --- result cache and HTTP service ---

// Cache is the content-addressed result cache: identical Configs
// fingerprint to the same key, concurrent identical requests coalesce
// onto one simulation, and results optionally persist on disk across
// processes. See NewCache.
type Cache = cache.Cache

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats = cache.Stats

// CacheDirEnv names the environment variable consulted for the default
// on-disk store location.
const CacheDirEnv = cache.DirEnv

// DefaultCacheBytes is the default in-memory cache bound (256 MiB).
const DefaultCacheBytes = cache.DefaultMaxBytes

// NewCache builds a result cache bounded to maxBytes resident bytes
// (<=0 disables the bound). A non-empty dir adds a persistent on-disk
// store under that directory.
func NewCache(maxBytes int64, dir string) *Cache { return cache.New(maxBytes, dir) }

// Fingerprint returns the canonical content hash of a configuration —
// the cache key. Two configs with equal fingerprints produce identical
// Results.
func Fingerprint(cfg Config) string { return cache.Fingerprint(cfg) }

// Cacheable reports whether a config's result can be cached; runs that
// collect per-run artifacts (timeline traces, gauge series) cannot.
func Cacheable(cfg Config) bool { return cache.Cacheable(cfg) }

// UseCache routes a runner's simulations through a cache; pass nil to
// restore direct execution. The substitution is result-transparent:
// cached results are bit-identical to fresh ones.
func UseCache(r *Runner, c *Cache) *Runner { return r.Use(c.RunFunc()) }

// Server is the simulator's HTTP face: POST /v1/run, POST /v1/sweep
// (NDJSON stream), GET /v1/verify, GET /healthz and GET /metrics, in
// front of a Cache and a Runner. See NewServer.
type Server = serve.Server

// ServerOptions configures NewServer; the zero value serves with a
// default runner, a fresh in-memory cache and sensible limits.
type ServerOptions = serve.Options

// NewServer builds the HTTP handler; mount it on any http.Server.
func NewServer(opts ServerOptions) *Server { return serve.New(opts) }

// Coordinator fronts a fleet of Servers: it accepts the same sweep
// requests as one server, shards the expanded cells across registered
// workers weighted by their capacity, retries and hedges stragglers,
// deduplicates by Fingerprint, and merges results into an NDJSON
// stream byte-identical to a single server's. See NewCoordinator.
type Coordinator = coord.Coordinator

// CoordinatorOptions configures NewCoordinator; the zero value serves
// with sensible heartbeat, retry, hedging and memo defaults.
type CoordinatorOptions = coord.Options

// NewCoordinator builds the fleet coordinator handler; mount it on any
// http.Server and Close (or Shutdown) it when done. The only
// construction error is a journal directory that cannot be opened or
// replayed.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) { return coord.New(opts) }

// --- timeline tracing ---

// TraceRecorder is the structured timeline recorder: a bounded ring of
// typed records (context switches, interrupt delivery and handlers,
// IPIs, softirqs, NIC DMA/interrupts, socket block/wake, lock
// contention). Set Config.Trace to attach one to a run; it surfaces on
// Result.Trace. Recording is passive — a traced run follows the exact
// trajectory of an untraced one.
type TraceRecorder = trace.Recorder

// TraceConfig sizes a run's recorder; set it on Config.Trace.
type TraceConfig = trace.Config

// TraceRecord is one timeline entry; TraceKind is its type tag.
type TraceRecord = trace.Record

// TraceKind is the type of one timeline record.
type TraceKind = trace.Kind

// Series is the sampled gauge time series (per-CPU runqueue depth and
// utilization, achieved Mbps, interrupt rate) collected on Result.Series
// when Config.GaugeCycles is set.
type Series = core.Series

// WriteChromeTrace exports a recorder's timeline as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing: one track per CPU plus
// one per NIC. clockHz converts virtual cycles to trace time; pass the
// run's Config.CPU.ClockHz.
func WriteChromeTrace(w io.Writer, r *TraceRecorder, clockHz uint64) error {
	return trace.WriteChrome(w, r, clockHz)
}

// WriteTextTrace exports a recorder's timeline as a plain-text dump, one
// record per line.
func WriteTextTrace(w io.Writer, r *TraceRecorder, clockHz uint64) error {
	return trace.WriteText(w, r, clockHz)
}

// --- fault injection ---

// FaultSchedule is a validated list of deterministic fault events —
// link flaps, random and bursty (Gilbert-Elliott) loss, wire delay
// with jitter, NIC DMA stalls, interrupt storms — executed by the
// engine at configured virtual times. Set it on Config.Faults; a nil
// or empty schedule is the clean baseline and leaves the run
// byte-identical to one without the fault subsystem. Faulted runs
// additionally drain the machine afterwards and verify the resource
// invariants (CheckInvariants), reporting the verdict on the Result.
type FaultSchedule = fault.Schedule

// FaultEvent is one scheduled fault; FaultKind tags its type.
type FaultEvent = fault.Event

// FaultKind is the type of one fault event.
type FaultKind = fault.Kind

// The fault kinds.
const (
	FaultLoss  = fault.KindLoss
	FaultBurst = fault.KindBurst
	FaultFlap  = fault.KindFlap
	FaultDelay = fault.KindDelay
	FaultStall = fault.KindStall
	FaultStorm = fault.KindStorm
)

// ParseFaults builds a schedule from the CLI/HTTP spec syntax —
// semicolon-separated events of comma-separated key=value pairs, e.g.
// "flap,nic=0,from=1e9,until=1.5e9;loss,rate=0.01" — or, with a
// leading "@", from a JSON schedule file. Validate the result against
// the machine shape before running.
func ParseFaults(spec string) (*FaultSchedule, error) { return fault.Parse(spec) }

// --- workload layer ---

// WorkloadSpec declaratively selects what runs on the machine: the
// paper's bulk ttcp transfer (default, also with per-connection
// alternating direction for mixed read/write targets), a closed-loop
// request/response workload over the long-lived connections, or the
// open-loop connection-churn cell that opens, serves and closes a
// bounded population of connections and reports tail latency. Set it on
// Config.Workload; nil is the bulk default and leaves the run
// byte-identical to one without the workload layer.
type WorkloadSpec = workload.Spec

// WorkloadKind tags a built-in workload.
type WorkloadKind = workload.Kind

// The built-in workload kinds.
const (
	WorkloadBulk     = workload.KindBulk
	WorkloadRPC      = workload.KindRPC
	WorkloadOpenLoop = workload.KindOpenLoop
)

// LatencySketch is the quantile sketch request latencies land in
// (Result.Latency): log-linear buckets, ~3% relative error.
type LatencySketch = stats.Sketch

// ParseWorkload builds a workload spec from the CLI/HTTP syntax — a
// kind followed by comma-separated key=value pairs, e.g.
// "openloop,conns=100000,interval=40000,arrival=pareto" — or, with a
// leading "@", from a JSON spec file. Defaults are applied and the
// result validated.
func ParseWorkload(spec string) (*WorkloadSpec, error) { return workload.Parse(spec) }

// --- interrupt steering and coalescing ---

// CoalesceConfig selects the NICs' receive-interrupt coalescing model:
// the legacy fixed inter-IRQ throttle (zero value / nil), an absolute
// hold-off timer, a frame-count threshold with a timeout backstop, or
// the adaptive mode that widens its window with observed burst rate.
// Set it on Config.Coalesce; nil is the legacy default and leaves the
// run byte-identical to one without the coalescing subsystem.
type CoalesceConfig = netdev.CoalesceConfig

// The coalescing modes.
const (
	CoalesceLegacy   = netdev.CoalesceLegacy
	CoalesceTimer    = netdev.CoalesceTimer
	CoalesceFrames   = netdev.CoalesceFrames
	CoalesceAdaptive = netdev.CoalesceAdaptive
)

// ParseCoalesce builds a coalescing config from the CLI/HTTP syntax — a
// mode followed by comma-separated key=value pairs, e.g.
// "timer,usecs=100" or "adaptive,min=5,max=250,frames=8" — or, with a
// leading "@", from a JSON config file. Empty selects the legacy
// throttle (nil). Defaults are applied and the result validated.
func ParseCoalesce(spec string) (*CoalesceConfig, error) { return core.ParseCoalesce(spec) }
