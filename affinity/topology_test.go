package affinity_test

import (
	"testing"

	"repro/affinity"
	"repro/internal/perf"
)

// quadConfig is a 4-processor run of the paper's workload via the public
// facade — the §5 scaling scenario beyond the measured 2P box.
func quadConfig(mode affinity.Mode) affinity.Config {
	cfg := affinity.DefaultConfig(mode, affinity.TX, 65536)
	t := affinity.Uniform(4, 8, 1)
	cfg.Topology = &t
	cfg.WarmupCycles = 10_000_000
	cfg.MeasureCycles = 40_000_000
	return cfg
}

// TestQuadProcessorOrdering checks the paper's headline result survives a
// machine the paper never measured: on 4 processors full affinity beats
// interrupt affinity beats no affinity.
func TestQuadProcessorOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run; skipped in -short mode")
	}
	rs := affinity.RunAll([]affinity.Config{
		quadConfig(affinity.ModeNone),
		quadConfig(affinity.ModeIRQ),
		quadConfig(affinity.ModeFull),
	})
	none, irq, full := rs[0], rs[1], rs[2]
	t.Logf("4P TX 64KB: none %.1f, irq %.1f, full %.1f Mb/s", none.Mbps, irq.Mbps, full.Mbps)
	if !(full.Mbps >= irq.Mbps && irq.Mbps >= none.Mbps) {
		t.Errorf("affinity ordering violated on 4P: full %.1f, irq %.1f, none %.1f",
			full.Mbps, irq.Mbps, none.Mbps)
	}
	if full.Mbps < 1.2*none.Mbps {
		t.Errorf("full affinity gain on 4P only %.1f%%; the extra CPUs are stranded",
			100*(full.Mbps/none.Mbps-1))
	}
}

// TestRSSViaFacade runs the §8 receive-side-scaling shape — 2 NICs with
// four queues each on 10 Gb/s links — end to end through the facade and
// checks the architectural effect RSS exists for: without it every
// interrupt lands on CPU0; with it the queue vectors spread the interrupt
// load across the processors. The run receives (RX) because TX-completion
// interrupts always use queue 0 — receive traffic is what RSS steers.
func TestRSSViaFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run; skipped in -short mode")
	}
	shape := func(queues int) affinity.Topology {
		top := affinity.Uniform(2, 2, queues)
		top.Conns = 8
		for i := range top.NICs {
			top.NICs[i].LinkBps = 10_000_000_000
		}
		return top
	}
	base := affinity.DefaultConfig(affinity.ModeNone, affinity.RX, 65536)
	base.WarmupCycles = 10_000_000
	base.MeasureCycles = 40_000_000

	single := base
	t1 := shape(1)
	single.Topology = &t1

	rss := base
	t4 := shape(4)
	rss.Topology = &t4
	pol, err := affinity.PolicyByName("rss")
	if err != nil {
		t.Fatal(err)
	}
	rss.Policy = pol

	plan, err := affinity.PlanFor(rss)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != "rss" || len(plan.QueueVectors[0]) != 4 {
		t.Fatalf("unexpected plan: %s", plan)
	}

	rs := affinity.RunAll([]affinity.Config{single, rss})
	t.Logf("2×10G NICs RX 64KB: single-queue %.1f Mb/s, rss %.1f Mb/s", rs[0].Mbps, rs[1].Mbps)
	if rs[1].Mbps < 0.95*rs[0].Mbps {
		t.Errorf("RSS (%.1f Mb/s) regressed against single-queue (%.1f Mb/s)",
			rs[1].Mbps, rs[0].Mbps)
	}
	if got := rs[0].Ctr.CPUTotal(1, perf.IRQsReceived); got != 0 {
		t.Errorf("single-queue: CPU1 took %d interrupts, want 0 (default mask pins CPU0)", got)
	}
	irq0 := rs[1].Ctr.CPUTotal(0, perf.IRQsReceived)
	irq1 := rs[1].Ctr.CPUTotal(1, perf.IRQsReceived)
	if irq0 == 0 || irq1 == 0 {
		t.Fatalf("RSS did not spread interrupts: cpu0=%d cpu1=%d", irq0, irq1)
	}
	// Receive interrupts split evenly, but CPU0 additionally takes every
	// ACK transmit-completion (queue 0), so allow it a majority.
	if ratio := float64(irq0) / float64(irq0+irq1); ratio < 0.15 || ratio > 0.85 {
		t.Errorf("RSS interrupt split badly skewed: cpu0=%d cpu1=%d", irq0, irq1)
	}
}
