package affinity_test

import (
	"strings"
	"testing"

	"repro/affinity"
)

func quickCfg(mode affinity.Mode, dir affinity.Direction, size int) affinity.Config {
	cfg := affinity.DefaultConfig(mode, dir, size)
	cfg.WarmupCycles = 20_000_000
	cfg.MeasureCycles = 60_000_000
	return cfg
}

func TestPublicAPIEndToEnd(t *testing.T) {
	base := affinity.Run(quickCfg(affinity.ModeNone, affinity.TX, 16384))
	full := affinity.Run(quickCfg(affinity.ModeFull, affinity.TX, 16384))
	if base.Mbps <= 0 || full.Mbps <= 0 {
		t.Fatalf("no throughput: %v / %v", base.Mbps, full.Mbps)
	}
	cmp := affinity.Compare(base, full)
	out := cmp.Format()
	for _, want := range []string{"Buf Mgmt", "Overall", "Spearman"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
	tab := affinity.BaselineTable(base)
	if len(tab.Rows) != 7 {
		t.Fatalf("Table 1 has %d bins, want 7", len(tab.Rows))
	}
	if got := len(affinity.Indicators(base)); got != 8 {
		t.Fatalf("Figure 5 has %d rows, want 8 (7 events + instr)", got)
	}
	rows := affinity.TopClearSymbols(base, 5)
	if len(rows) != 2 {
		t.Fatalf("Table 4 has %d CPU groups, want 2", len(rows))
	}
	if !strings.Contains(affinity.FormatTopSymbols(rows), "CPU 0") {
		t.Error("Table 4 rendering broken")
	}
}

func TestPublicEnums(t *testing.T) {
	if len(affinity.Modes()) != 4 {
		t.Fatal("want 4 modes")
	}
	sizes := affinity.Sizes()
	if len(sizes) != 7 || sizes[0] != 128 || sizes[6] != 65536 {
		t.Fatalf("sizes = %v", sizes)
	}
	// Sizes returns a copy — mutating it must not affect the package.
	sizes[0] = 1
	if affinity.Sizes()[0] != 128 {
		t.Fatal("Sizes leaked internal slice")
	}
	if affinity.ModeFull.String() != "Full Aff" {
		t.Fatalf("mode name %q", affinity.ModeFull)
	}
}

func TestMachineCustomWindows(t *testing.T) {
	cfg := quickCfg(affinity.ModeIRQ, affinity.RX, 8192)
	m := affinity.NewMachine(cfg)
	defer m.Shutdown()
	m.Eng.Run(20_000_000)
	r1 := m.Measure(40_000_000)
	r2 := m.Measure(40_000_000)
	if r1.Bytes == 0 || r2.Bytes == 0 {
		t.Fatal("windows measured nothing")
	}
	// Counter diffs are per-window, not cumulative.
	if r2.ElapsedCycles != 40_000_000 {
		t.Fatalf("window length %d", r2.ElapsedCycles)
	}
}
